//! The paper's flagship NLU use case (§2.2, Figure 3): search the web,
//! fetch and analyze every result, and aggregate — "we have been using
//! the rich SDK to determine how favorably people, companies, and other
//! entities are represented on the Web."
//!
//! Run with: `cargo run --example web_sentiment`

use cogsdk::sdk::RichSdk;
use cogsdk::search::services::standard_web;
use cogsdk::sim::SimEnv;
use cogsdk::text::analysis::Analyzer;
use cogsdk::text::services::standard_fleet;
use std::sync::Arc;

fn main() {
    let env = SimEnv::with_seed(2026);
    let sdk = RichSdk::new(&env);

    // Build the simulated web: 400 generated articles behind two search
    // engines and a web-fetch service.
    let (engines, web, _index) = standard_web(&env, 11, 400);
    for engine in &engines {
        sdk.register(engine.clone());
    }
    sdk.register(web.clone());

    // Three NLU vendors with different quality/latency/cost profiles.
    let analyzer = Arc::new(Analyzer::with_default_lexicons());
    let fleet = standard_fleet(&env, analyzer);
    for vendor in &fleet {
        sdk.register(vendor.clone());
    }

    let query = "market growth technology";
    println!("query: {query:?}\n");

    // Figure-3 pipeline: search -> fetch HTML -> extract -> analyze ->
    // aggregate, using the best NLU vendor.
    let agg = sdk
        .nlu()
        .search_and_analyze(&engines[0], &web, &fleet[0], query, 12)
        .expect("pipeline");

    println!(
        "analyzed {} documents (stored locally: {})",
        agg.documents,
        sdk.nlu().document_store().len()
    );
    println!("\nmost discussed entities (docs, mentions, mean sentiment):");
    for e in agg.entities.iter().take(8) {
        println!(
            "  {:22} docs={:2} mentions={:3} sentiment={:+.2}",
            e.name, e.documents, e.mentions, e.mean_sentiment
        );
    }
    println!("\ntop keywords:");
    for k in agg.keywords.iter().take(8) {
        println!(
            "  {:18} docs={:2} count={:3}",
            k.text, k.documents, k.total_count
        );
    }
    println!("\ntopic distribution:");
    for (label, confidence) in agg.concepts.iter().take(5) {
        println!("  {label:12} {confidence:.2}");
    }
    println!("\noverall sentiment: {:+.3}", agg.mean_sentiment);

    // §2.1: run the same document through every vendor and combine, with
    // confidence proportional to agreement.
    let sample = "IBM acquired Oracle in an excellent deal. Germany, France and \
                  Japan praised the impressive innovation; Microsoft warned of risk.";
    let consensus = sdk.nlu().consensus_analyze(&fleet, sample);
    println!(
        "\nmulti-vendor consensus over {} vendors:",
        consensus.responding_services.len()
    );
    for e in &consensus.entities {
        println!(
            "  {:16} confidence={:.2} ({})",
            e.canonical,
            e.confidence,
            e.services.join(", ")
        );
    }
    for r in &consensus.relations {
        println!(
            "  relation {} -{}-> {} confidence={:.2}",
            r.subject, r.predicate, r.object, r.confidence
        );
    }

    // What did the run cost?
    println!("\ntotal spend: {}", sdk.monitor().total_cost());
}
