//! The rich SDK's HTTP interface (§2): "the rich SDK can expose an HTTP
//! interface allowing applications written in other languages to use it."
//! Starts a real TCP gateway over the SDK and exercises it with a plain
//! socket client, the way a Python or Node program would.
//!
//! Run with: `cargo run --example http_gateway`

use cogsdk::obs::Telemetry;
use cogsdk::sdk::gateway::HttpGateway;
use cogsdk::sdk::RichSdk;
use cogsdk::sim::latency::LatencyModel;
use cogsdk::sim::{SimEnv, SimService};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn http(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("gateway reachable");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn main() {
    let env = SimEnv::with_seed(42);
    let sdk = Arc::new(RichSdk::with_telemetry(&env, Telemetry::new()));
    sdk.register(
        SimService::builder("translator", "nlu")
            .latency(LatencyModel::lognormal_ms(30.0, 0.3))
            .build(&env),
    );
    sdk.register(
        SimService::builder("translator-b", "nlu")
            .latency(LatencyModel::lognormal_ms(90.0, 0.3))
            .build(&env),
    );

    let gateway = Arc::new(HttpGateway::new(sdk));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (addr, handle) = gateway.serve("127.0.0.1:0", shutdown.clone()).unwrap();
    println!("gateway listening on http://{addr}\n");

    // 1. Discover services (GET /services).
    let resp = http(addr, "GET /services HTTP/1.1\r\nHost: x\r\n\r\n");
    println!(
        "GET /services\n  -> {}\n",
        resp.lines().last().unwrap_or("")
    );

    // 2. Invoke by name (POST /invoke/{service}).
    let resp = http(
        addr,
        &post(
            "/invoke/translator",
            r#"{"operation": "translate", "payload": {"text": "hello"}}"#,
        ),
    );
    println!(
        "POST /invoke/translator\n  -> {}\n",
        resp.lines().last().unwrap_or("")
    );

    // 3. Cached invocation: the second call reports cache_hit=true.
    let body = r#"{"payload": {"text": "cached?"}}"#;
    http(addr, &post("/invoke-cached/translator", body));
    let resp = http(addr, &post("/invoke-cached/translator", body));
    println!(
        "POST /invoke-cached/translator (repeat)\n  -> {}\n",
        resp.lines().last().unwrap_or("")
    );

    // 4. Class invocation with ranked selection.
    let resp = http(
        addr,
        &post(
            "/invoke-class/nlu",
            r#"{"payload": {"text": "pick for me"}}"#,
        ),
    );
    println!(
        "POST /invoke-class/nlu\n  -> {}\n",
        resp.lines().last().unwrap_or("")
    );

    // 5. Monitoring over HTTP.
    let resp = http(addr, "GET /monitor/translator HTTP/1.1\r\nHost: x\r\n\r\n");
    println!(
        "GET /monitor/translator\n  -> {}\n",
        resp.lines().last().unwrap_or("")
    );

    // 6. Errors map to proper status codes.
    let resp = http(addr, &post("/invoke/ghost", r#"{"payload": 1}"#));
    println!(
        "POST /invoke/ghost\n  -> {}\n",
        resp.lines().next().unwrap_or("")
    );

    // 7. Prometheus scrape: everything the calls above did — attempts,
    // cache hits/misses, pool jobs, per-route gateway counters — is
    // sitting in /metrics ready for a real scraper.
    let resp = http(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    let metrics_body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
    println!("GET /metrics (scrape excerpt)");
    for line in metrics_body
        .lines()
        .filter(|l| {
            l.starts_with("sdk_attempts_total")
                || l.starts_with("cache_requests_total")
                || l.starts_with("gateway_requests_total")
        })
        .take(8)
    {
        println!("  {line}");
    }

    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap();
    println!("\ngateway shut down cleanly");
}
