//! Service selection under size-dependent latency (§2): the paper's
//! `s1`/`s2` example. "Service s1 may have the lowest latency for storing
//! small objects, while s2 may have the lowest latency for storing large
//! objects" — the SDK learns both latency curves from observations and
//! routes each request to the service with the lowest *predicted* latency
//! for its payload size.
//!
//! Run with: `cargo run --example service_selection`

use cogsdk::json::{json, Json};
use cogsdk::sdk::predict::Predictor;
use cogsdk::sdk::rank::RankOptions;
use cogsdk::sdk::score::ScoringFormula;
use cogsdk::sdk::RichSdk;
use cogsdk::sim::latency::LatencyModel;
use cogsdk::sim::{Request, SimEnv, SimService};

fn payload_of(bytes: usize) -> Json {
    json!({"blob": ("x".repeat(bytes))})
}

fn main() {
    let env = SimEnv::with_seed(99);
    let sdk = RichSdk::new(&env);

    // s1: tiny base latency, steep per-byte cost. s2: the opposite.
    sdk.register(
        SimService::builder("s1", "storage")
            .latency(LatencyModel::size_linear_ms(1.0, 0.010))
            .build(&env),
    );
    sdk.register(
        SimService::builder("s2", "storage")
            .latency(LatencyModel::size_linear_ms(25.0, 0.001))
            .build(&env),
    );

    // Training phase: store objects of many sizes on both services while
    // the monitor records (size, latency) pairs.
    println!("training on 60 stores of varied size...");
    for i in 1..=30 {
        let size = i * 300;
        let payload = payload_of(size);
        let req = Request::new("put", payload).with_param("size", size as f64);
        sdk.invoke("s1", &req).unwrap();
        sdk.invoke("s2", &req).unwrap();
    }

    // Selection phase: rank by *predicted* latency at each request size.
    println!(
        "\n{:>9} | {:>10} | {:>10} | chosen",
        "size (B)", "pred s1", "pred s2"
    );
    let mut crossover = None;
    for size in [200, 500, 1000, 2000, 2667, 3000, 5000, 10_000, 50_000] {
        let options = RankOptions {
            predictor: Predictor::RegressionOn("size".into()),
            formula: ScoringFormula::weighted(1.0, 0.0, 0.0), // latency only
            default_latency_ms: 100.0,
            params: vec![("size".into(), size as f64)],
            availability_penalty: false,
        };
        let ranked = sdk.rank("storage", &options);
        let by_name = |n: &str| {
            ranked
                .iter()
                .find(|r| r.service.name() == n)
                .map(|r| r.inputs.response_ms)
                .unwrap_or(f64::NAN)
        };
        let winner = ranked[0].service.name().to_string();
        if winner == "s2" && crossover.is_none() {
            crossover = Some(size);
        }
        println!(
            "{size:>9} | {:>8.2}ms | {:>8.2}ms | {winner}",
            by_name("s1"),
            by_name("s2"),
        );
    }
    // Analytic crossover: 1 + 0.010x = 25 + 0.001x  =>  x = 24/0.009 ≈ 2667.
    println!(
        "\nobserved crossover near {} bytes (analytic: ~2667 bytes)",
        crossover.map_or("none".to_string(), |s| s.to_string())
    );

    // Route real traffic through invoke_class and confirm the routing.
    let small = Request::new("put", payload_of(300)).with_param("size", 300.0);
    let large = Request::new("put", payload_of(30_000)).with_param("size", 30_000.0);
    let options = RankOptions {
        predictor: Predictor::RegressionOn("size".into()),
        formula: ScoringFormula::weighted(1.0, 0.0, 0.0),
        default_latency_ms: 100.0,
        params: vec![("size".into(), 300.0)],
        availability_penalty: false,
    };
    let ok = sdk.invoke_class("storage", &small, &options).unwrap();
    println!("\n300 B object    -> routed to {}", ok.service);
    let options = RankOptions {
        params: vec![("size".into(), 30_000.0)],
        ..options
    };
    let ok = sdk.invoke_class("storage", &large, &options).unwrap();
    println!("30 000 B object -> routed to {}", ok.service);
}
