//! Visual recognition with a multi-vendor fleet (§1, §2.2): classify a
//! batch of images with three vision services of different quality and
//! combine their outputs — labels seen by more vendors earn higher
//! confidence, exactly the paper's §2.1 redundant-invocation rationale.
//!
//! Run with: `cargo run --example image_consensus`

use cogsdk::datasvc::vision::{vision_fleet, ImageDescriptor};
use cogsdk::json::{json, Json};
use cogsdk::sdk::RichSdk;
use cogsdk::sim::{Request, SimEnv};
use std::collections::BTreeMap;

fn main() {
    let env = SimEnv::with_seed(555);
    let sdk = RichSdk::new(&env);
    let fleet = vision_fleet(&env);
    for vendor in &fleet {
        sdk.register(vendor.clone());
    }

    let images: Vec<ImageDescriptor> = (0..6).map(ImageDescriptor::generate).collect();
    println!(
        "classifying {} images with {} vendors\n",
        images.len(),
        fleet.len()
    );

    let mut correct_by_vendor: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for image in &images {
        println!("{} (truth: {})", image.id, image.labels.join(", "));
        // Ask every vendor (redundant invocation, comparison use case).
        let mut votes: BTreeMap<String, Vec<&str>> = BTreeMap::new();
        for vendor in &fleet {
            let Ok(resp) = sdk.invoke(
                vendor.name(),
                &Request::new("classify", json!({"image": (image.to_json())})),
            ) else {
                continue;
            };
            let labels: Vec<String> = resp
                .payload
                .get("labels")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|l| l.get("label").and_then(Json::as_str).map(str::to_string))
                .collect();
            let stats = correct_by_vendor
                .entry(vendor.name().to_string())
                .or_insert((0, 0));
            stats.0 += labels.iter().filter(|l| image.labels.contains(l)).count();
            stats.1 += image.labels.len();
            for label in labels {
                votes.entry(label).or_default().push(vendor.name());
            }
        }
        // Consensus: fraction of vendors agreeing.
        let mut ranked: Vec<(&String, usize)> = votes.iter().map(|(l, v)| (l, v.len())).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (label, n) in ranked {
            let marker = if image.labels.contains(label) {
                " "
            } else {
                "!"
            };
            println!("  {marker} {label:12} {n}/{} vendors", fleet.len());
        }
        println!();
    }

    println!("per-vendor recall over the batch:");
    for (vendor, (found, truth)) in correct_by_vendor {
        println!(
            "  {vendor:14} {found}/{truth} ({:.0}%)",
            100.0 * found as f64 / truth as f64
        );
    }
    println!(
        "\n('!' marks hallucinated labels — note they rarely win a consensus vote)\n\
         total vision spend: {}",
        sdk.monitor().total_cost()
    );
}
